"""The paper's recurrence simulator: structure, timing and critical path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytic_sim import (
    COOLDOWN,
    STEADY,
    WARMUP,
    PipelineSim,
    simulate_partition,
)
from repro.core.balance_dp import balanced_partition
from repro.core.partition import StageTimes


def times(fwd, bwd, comm=0.0):
    return StageTimes(tuple(fwd), tuple(bwd), comm)


def balanced(n, f=1.0, b=2.0, comm=0.0):
    return times([f] * n, [b] * n, comm)


class TestStageOrder:
    def test_block_counts_match_paper_formula(self):
        """Stage k owns max(0, m - n + k + 1) 1F1B blocks."""
        n, m = 4, 8
        sim = PipelineSim(balanced(n), m)
        for x in range(n):
            steady_fps = [
                op for op, ph in sim.stage_order(x)
                if ph == STEADY and op[0] == "F"
            ]
            assert len(steady_fps) == max(0, m - n + x + 1)

    def test_each_stage_runs_all_micro_batches(self):
        n, m = 3, 7
        sim = PipelineSim(balanced(n), m)
        for x in range(n):
            ops = [op for op, _ in sim.stage_order(x)]
            fwd_mbs = sorted(mb for kind, _, mb in ops if kind == "F")
            bwd_mbs = sorted(mb for kind, _, mb in ops if kind == "B")
            assert fwd_mbs == list(range(m))
            assert bwd_mbs == list(range(m))

    def test_warmup_count(self):
        n, m = 5, 8
        sim = PipelineSim(balanced(n), m)
        for x in range(n):
            warm = [op for op, ph in sim.stage_order(x) if ph == WARMUP]
            assert len(warm) == min(m, n - 1 - x)

    def test_last_stage_has_no_warmup_or_cooldown(self):
        sim = PipelineSim(balanced(4), 8)
        phases = {ph for _, ph in sim.stage_order(3)}
        assert phases == {STEADY}

    def test_small_m_all_warmup_cooldown(self):
        n, m = 6, 2
        sim = PipelineSim(balanced(n), m)
        phases = [ph for _, ph in sim.stage_order(0)]
        assert STEADY not in phases


class TestTiming:
    def test_single_stage_is_serial(self):
        sim = PipelineSim(times([1.0], [2.0]), 5).run()
        assert sim.iteration_time == pytest.approx(5 * 3.0)

    def test_balanced_closed_form_no_comm(self):
        """Balanced no-comm pipeline: (m + n - 1) periods of (f + b)...

        Exactly: fill of n-1 forwards + m periods + drain of n-1 backwards.
        """
        n, m, f, b = 4, 8, 1.0, 2.0
        sim = PipelineSim(balanced(n, f, b), m, comm_mode="edges").run()
        expected = (n - 1) * f + m * (f + b) + (n - 1) * b
        assert sim.iteration_time == pytest.approx(expected)

    def test_paper_mode_at_least_edges_mode(self):
        st_ = times([1.0, 1.2, 0.9], [2.0, 2.4, 1.8], comm=0.05)
        paper = PipelineSim(st_, 6, comm_mode="paper").run()
        edges = PipelineSim(st_, 6, comm_mode="edges").run()
        assert paper.iteration_time >= edges.iteration_time - 1e-12

    def test_more_micro_batches_longer(self):
        st_ = balanced(3, comm=0.1)
        t1 = PipelineSim(st_, 4).run().iteration_time
        t2 = PipelineSim(st_, 8).run().iteration_time
        assert t2 > t1

    def test_startup_overhead_is_forward_fill(self):
        n, m = 4, 8
        sim = PipelineSim(balanced(n, f=1.0, b=2.0), m, comm_mode="edges").run()
        assert sim.startup_overhead == pytest.approx((n - 1) * 1.0)

    def test_comm_increases_startup(self):
        base = PipelineSim(balanced(4), 8).run().startup_overhead
        with_comm = PipelineSim(balanced(4, comm=0.2), 8).run().startup_overhead
        assert with_comm == pytest.approx(base + 3 * 0.2)

    def test_imbalance_increases_iteration(self):
        bal = PipelineSim(balanced(4), 8).run().iteration_time
        skew = PipelineSim(times([0.5, 1.5, 1.0, 1.0],
                                 [1.0, 3.0, 2.0, 2.0]), 8).run().iteration_time
        assert skew > bal

    def test_invalid_micro_batches(self):
        with pytest.raises(ValueError):
            PipelineSim(balanced(2), 0)

    def test_unknown_comm_mode(self):
        with pytest.raises(ValueError):
            PipelineSim(balanced(2), 2, comm_mode="nope")


class TestDependencies:
    def test_forward_waits_for_previous_stage(self):
        sim = PipelineSim(balanced(3, comm=0.0), 4, comm_mode="edges").run()
        for mb in range(4):
            for x in range(1, 3):
                assert sim.op_start[("F", x, mb)] >= sim.op_end[("F", x - 1, mb)]

    def test_backward_waits_for_next_stage(self):
        sim = PipelineSim(balanced(3), 4, comm_mode="edges").run()
        for mb in range(4):
            for x in range(2):
                assert sim.op_start[("B", x, mb)] >= sim.op_end[("B", x + 1, mb)]

    def test_intra_stage_ops_serial(self):
        sim_obj = PipelineSim(balanced(3), 5, comm_mode="edges")
        sim = sim_obj.run()
        for x in range(3):
            order = [op for op, _ in sim_obj.stage_order(x)]
            for a, b in zip(order, order[1:]):
                assert sim.op_start[b] >= sim.op_end[a] - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=10),
        st.data(),
    )
    def test_random_pipelines_respect_dependencies(self, n, m, data):
        fwd = [data.draw(st.floats(min_value=0.1, max_value=3.0)) for _ in range(n)]
        bwd = [data.draw(st.floats(min_value=0.1, max_value=3.0)) for _ in range(n)]
        comm = data.draw(st.floats(min_value=0.0, max_value=0.5))
        sim = PipelineSim(times(fwd, bwd, comm), m, comm_mode="edges").run()
        busy = sum(m * (f + b) for f, b in zip(fwd, bwd)) / n
        assert sim.iteration_time >= busy / 1.0 - 1e-9  # sanity lower bound
        for mb in range(m):
            for x in range(1, n):
                assert sim.op_start[("F", x, mb)] >= \
                    sim.op_end[("F", x - 1, mb)] + comm - 1e-9


class TestCriticalPath:
    def test_path_starts_at_first_forward(self):
        sim = PipelineSim(balanced(4), 8).run()
        first = sim.critical_path[0]
        assert first == ("F", 0, 0)

    def test_path_ends_at_latest_op(self):
        sim = PipelineSim(balanced(4), 8).run()
        last = sim.critical_path[-1]
        assert sim.op_end[last] == pytest.approx(sim.iteration_time)

    def test_path_is_connected_in_time(self):
        sim = PipelineSim(balanced(4), 8).run()
        path = sim.critical_path
        for a, b in zip(path, path[1:]):
            assert sim.op_end[a] <= sim.op_start[b] + 1e-9

    def test_master_stage_is_heaviest(self):
        st_ = times([1.0, 2.0, 1.0], [2.0, 4.0, 2.0], comm=0.0)
        sim = PipelineSim(st_, 9).run()
        assert sim.master_stage == 1

    def test_master_tie_breaks_toward_last_stage(self):
        """Balanced pipeline: paper picks the path closest to the last stage."""
        sim = PipelineSim(balanced(4), 8).run()
        assert sim.master_stage == 3

    def test_master_moves_with_load(self):
        heavy_first = times([3.0, 1.0, 1.0], [6.0, 2.0, 2.0])
        sim = PipelineSim(heavy_first, 9).run()
        assert sim.master_stage == 0


class TestSimResultHelpers:
    def test_bubble_fraction_bounds(self):
        sim = PipelineSim(times([1.0, 0.5], [2.0, 1.0]), 6).run()
        for x in range(2):
            frac = sim.bubble_fraction(x)
            assert 0.0 <= frac < 1.0

    def test_heavier_stage_has_fewer_bubbles(self):
        sim = PipelineSim(times([1.0, 0.5], [2.0, 1.0]), 6).run()
        assert sim.bubble_fraction(0) < sim.bubble_fraction(1)


class TestSimulatePartition:
    def test_wrapper_consistency(self, tiny_profile):
        p = balanced_partition(tiny_profile.block_times(), 3)
        sim = simulate_partition(tiny_profile, p, 6)
        assert sim.iteration_time > 0
        assert sim.num_stages == 3
