"""Cluster-wide joint autotuner: (dp x pp x slice-count) end to end."""

import pytest

from repro.core.strategy import autotune_config
from repro.parallel.grid import ParallelLayout, joint_config_space, layouts_for


class TestJointSpace:
    def test_slice_candidates_bounded_by_warmup_depth(self, train):
        layout = ParallelLayout(8, 4)  # dp2, m = 64/(4*2) = 8
        assert list(layout.slice_candidates(train)) == [0, 1, 2, 3]

    def test_pp1_has_only_unsliced(self, train):
        assert list(ParallelLayout(4, 1).slice_candidates(train)) == [0]

    def test_space_enumerates_every_layout_slice_pair(self, train):
        pairs = list(joint_config_space(8, train))
        layouts = {layout for layout, _ in pairs}
        assert layouts == set(layouts_for(8, train))
        for layout in layouts:
            counts = [s for lo, s in pairs if lo == layout]
            assert counts == list(layout.slice_candidates(train))


class TestAutotune:
    @pytest.fixture(scope="class")
    def tuned(self, tiny_profile):
        return autotune_config(tiny_profile, 4)

    def test_covers_every_layout(self, tuned, tiny_profile):
        assert tuned.num_gpus == 4
        assert tuned.layouts_searched == len(
            layouts_for(4, tiny_profile.train)
        )
        # One candidate per (layout, slice-count) point of the space.
        assert len(tuned.candidates) >= tuned.layouts_searched

    def test_best_is_the_executed_argmin(self, tuned):
        feasible = [c for c in tuned.candidates if c.ok]
        assert tuned.best in feasible
        assert all(
            tuned.best.iteration_seconds <= c.iteration_seconds
            for c in feasible
        )
        assert tuned.best.partition is not None
        assert tuned.best.planner in ("oracle", "planner", "trivial", "repair")

    def test_beats_or_matches_every_single_layout(self, tuned):
        """The joint argmin can never lose to a fixed-layout choice."""
        for c in tuned.candidates:
            if c.ok:
                assert tuned.best.iteration_seconds <= c.iteration_seconds

    def test_search_metadata(self, tuned):
        assert tuned.search_seconds > 0.0
        for c in tuned.candidates:
            if c.ok and c.layout.pipeline_stages > 1:
                assert c.plan_seconds >= 0.0
                assert 0 <= c.algorithm2_slices < c.layout.pipeline_stages

    def test_jobs_do_not_change_the_answer(self, tiny_profile, tuned):
        parallel = autotune_config(tiny_profile, 4, jobs=2)
        assert parallel.best.layout == tuned.best.layout
        assert parallel.best.slice_count == tuned.best.slice_count
        assert parallel.best.iteration_seconds == tuned.best.iteration_seconds
        assert [
            (c.layout, c.slice_count, c.status, c.iteration_seconds)
            for c in parallel.candidates
        ] == [
            (c.layout, c.slice_count, c.status, c.iteration_seconds)
            for c in tuned.candidates
        ]

    def test_plan_cache_warm_replay(self, tiny_profile, tmp_path, tuned):
        from repro.core.plan_cache import PlanCache

        cache = PlanCache(tmp_path)
        cold = autotune_config(tiny_profile, 4, cache=cache)
        assert cache.misses > 0 and len(cache) > 0
        warm = autotune_config(tiny_profile, 4, cache=cache)
        assert cache.hits >= cache.misses  # every search replayed
        assert warm.best.layout == cold.best.layout
        assert warm.best.iteration_seconds == cold.best.iteration_seconds

    def test_infeasible_cluster_raises(self, tiny_profile):
        # 64-way data parallelism cannot divide a 16-micro-batch global
        # batch at every depth; depth > num_blocks is marked "X" — an
        # empty feasible set must raise, not return a bogus best.
        with pytest.raises(ValueError):
            ParallelLayout(0, 1)


class TestExperiment:
    def test_run_assembles_rows(self):
        from repro.experiments import autotune as exp

        result = exp.run(gpu_counts=(2,))
        assert result.rows
        assert any(r[-1] == "<== best" for r in result.rows)
        assert "gpus2" in result.meta["best"]
        chosen = result.meta["best"]["gpus2"]
        assert chosen["iteration_ms"] > 0.0
