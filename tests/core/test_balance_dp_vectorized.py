"""Property suite: vectorized Algorithm-1 tables == the scalar loop.

The contract is *bit*-identity, not approximate equality: ``time`` tables
must match byte-for-byte (``tobytes``) and ``choice`` tables exactly, so
the vectorized fill can silently replace the scalar one everywhere the
planner, autotuner and repair fallback reconstruct partitions.  Weights
draw heavily from a tiny value set to saturate ties and exercise the
first-occurrence argmin tie-break.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.balance_dp import BalanceTable, min_max_partition

# Mix smooth floats with a tiny tie-prone alphabet (zeros included).
weights_st = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.sampled_from([0.0, 1.0, 1.0, 2.5]),
    ),
    min_size=1,
    max_size=40,
)


class TestBitIdentity:
    @given(weights=weights_st, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_tables_bitwise_equal(self, weights, data):
        p = data.draw(st.integers(1, len(weights)))
        vec = BalanceTable(weights, p, impl="vector")
        sca = BalanceTable(weights, p, impl="scalar")
        assert vec.time.tobytes() == sca.time.tobytes()
        assert np.array_equal(vec.choice, sca.choice)

    @given(weights=weights_st, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_sizes_match_scalar_over_all_queries(self, weights, data):
        p = data.draw(st.integers(1, len(weights)))
        table = BalanceTable(weights, p, impl="vector")
        nb = data.draw(st.integers(1, len(weights)))
        s = data.draw(st.integers(1, min(p, nb)))
        assert table.sizes(s, nb) == min_max_partition(
            weights[:nb], s, impl="scalar"
        )


class TestPrefixProperty:
    @given(weights=weights_st, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_sub_query_equals_fresh_table(self, weights, data):
        """One table answers every (num_blocks, stages) sub-query exactly
        as a table built on just that prefix would."""
        p = data.draw(st.integers(1, len(weights)))
        table = BalanceTable(weights, p)
        nb = data.draw(st.integers(1, len(weights)))
        s = data.draw(st.integers(1, min(p, nb)))
        fresh = BalanceTable(weights[:nb], s)
        assert table.sizes(s, nb) == fresh.sizes(s)
        assert table.bottleneck_value(s, nb) == fresh.bottleneck_value(s)
