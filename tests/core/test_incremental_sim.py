"""Property tests for prefix-state checkpoints and incremental resume.

The contract the perf work must never weaken: every incremental path is
**bit-identical** to a cold simulation —

* ``PipelineSim.resume(prefix_state(k), suffix)`` reproduces
  ``PipelineSim.run()`` exactly (iteration time, startup overhead,
  critical path, master stage, per-op times, ties included), for every
  cut, both comm modes, and tie-saturated as well as continuous costs;
* a chain of ``PrefixState.extend`` steps equals the one-shot
  ``prefix_state(k)`` checkpoint bit for bit;
* ``SuffixSimBatch`` equals ``K`` scalar cold runs, for one shared
  checkpoint, per-row checkpoints, and the start-less fast path;
* the incremental oracle (bound tables + dominance memo + suffix
  batching) returns the exact brute-force argmin, including on profiles
  with zero-cost blocks — the only regime where distinct cut vectors can
  collide on identical stage-time tuples, i.e. where the dominance memo
  actually fires.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HardwareConfig, ModelConfig, TrainConfig
from repro.core.analytic_sim import (
    PipelineSim,
    PrefixState,
    SuffixSimBatch,
)
from repro.core.exhaustive import exhaustive_partition
from repro.core.partition import StageTimes
from repro.models.blocks import Block, BlockKind
from repro.profiling.modelconfig import BlockProfile, ModelProfile

_MODEL = ModelConfig(name="synthetic", num_layers=1, hidden_size=64, num_heads=4)
_HW = HardwareConfig()
_TRAIN = TrainConfig(micro_batch_size=1, global_batch_size=8)

#: discrete values that collide constantly — exact-tie saturation is the
#: worst case for master-stage and critical-path tie-breaking.
_TIE_HEAVY = st.sampled_from([0.5, 1.0, 1.5, 2.0])
_CONTINUOUS = st.floats(min_value=0.01, max_value=5.0, allow_nan=False)
_TIMES = st.one_of(_TIE_HEAVY, _CONTINUOUS)


def make_profile(fwd, bwd, comm):
    """A synthetic ModelProfile carrying exactly these block times."""
    blocks = tuple(
        BlockProfile(
            block=Block(index=i, kind=BlockKind.ATTENTION, layer_index=i),
            fwd_time=f,
            bwd_time=b,
            params=1.0,
            activation_out_bytes=1.0,
            stash_bytes=1.0,
            workspace_bytes=1.0,
        )
        for i, (f, b) in enumerate(zip(fwd, bwd))
    )
    return ModelProfile(
        model=_MODEL, hardware=_HW, train=_TRAIN, blocks=blocks,
        comm_time=comm, boundary_bytes=1.0,
    )


@st.composite
def _pipeline_case(draw, min_stages=2, max_stages=10):
    n = draw(st.integers(min_value=min_stages, max_value=max_stages))
    m = draw(st.integers(min_value=1, max_value=8))
    comm_mode = draw(st.sampled_from(["paper", "edges"]))
    comm = draw(st.sampled_from([0.0, 0.05, 0.5]))
    fwd = tuple(draw(_TIMES) for _ in range(n))
    bwd = tuple(draw(_TIMES) for _ in range(n))
    return n, m, comm_mode, comm, fwd, bwd


def _assert_results_identical(cold, warm):
    assert warm.iteration_time == cold.iteration_time
    assert warm.startup_overhead == cold.startup_overhead
    assert warm.master_stage == cold.master_stage
    assert warm.critical_path == cold.critical_path
    assert warm.op_start == cold.op_start
    assert warm.op_end == cold.op_end


class TestResumeMatchesCold:
    @settings(max_examples=120, deadline=None)
    @given(_pipeline_case(), st.data())
    def test_resume_bit_identical(self, case, data):
        n, m, comm_mode, comm, fwd, bwd = case
        k = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")
        times = StageTimes(fwd, bwd, comm)
        sim = PipelineSim(times, m, comm_mode=comm_mode)
        cold = sim.run()
        state = sim.prefix_state(k)
        warm = PipelineSim.resume(
            state, StageTimes(fwd[k:], bwd[k:], comm)
        )
        _assert_results_identical(cold, warm)

    @settings(max_examples=80, deadline=None)
    @given(_pipeline_case())
    def test_extend_chain_matches_one_shot_checkpoint(self, case):
        n, m, comm_mode, comm, fwd, bwd = case
        sim = PipelineSim(StageTimes(fwd, bwd, comm), m, comm_mode=comm_mode)
        chain = PrefixState.initial(n, m, comm, comm_mode=comm_mode)
        for k in range(n):
            direct = sim.prefix_state(k)
            assert chain.k == direct.k
            assert chain.prefix_fwd == direct.prefix_fwd
            assert chain.prefix_bwd == direct.prefix_bwd
            assert chain._start == direct._start
            assert chain._end == direct._end
            if k < n - 1:
                chain = chain.extend(fwd[k], bwd[k])


class TestSuffixBatchMatchesCold:
    @settings(max_examples=60, deadline=None)
    @given(_pipeline_case(max_stages=7), st.data())
    def test_shared_prefix_batch(self, case, data):
        n, m, comm_mode, comm, fwd, bwd = case
        k = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")
        kk = data.draw(st.integers(min_value=1, max_value=4), label="K")
        rows = [
            (
                tuple(data.draw(_TIMES) for _ in range(n - k)),
                tuple(data.draw(_TIMES) for _ in range(n - k)),
            )
            for _ in range(kk)
        ]
        state = PipelineSim(
            StageTimes(fwd, bwd, comm), m, comm_mode=comm_mode
        ).prefix_state(k)
        batch = SuffixSimBatch(
            state, [r[0] for r in rows], [r[1] for r in rows]
        )
        its = batch.iteration_times().tolist()
        sus = batch.startup_overheads().tolist()
        for j, (sf, sb) in enumerate(rows):
            cold = PipelineSim(
                StageTimes(fwd[:k] + sf, bwd[:k] + sb, comm),
                m, comm_mode=comm_mode,
            ).run()
            assert its[j] == cold.iteration_time
            assert sus[j] == cold.startup_overhead
            _assert_results_identical(cold, batch.result(j))

    @settings(max_examples=40, deadline=None)
    @given(_pipeline_case(max_stages=6), st.data())
    def test_per_row_prefix_states(self, case, data):
        n, m, comm_mode, comm, _, _ = case
        k = data.draw(st.integers(min_value=0, max_value=n - 1), label="cut")
        kk = data.draw(st.integers(min_value=1, max_value=3), label="K")
        fulls = [
            (
                tuple(data.draw(_TIMES) for _ in range(n)),
                tuple(data.draw(_TIMES) for _ in range(n)),
            )
            for _ in range(kk)
        ]
        states = [
            PipelineSim(
                StageTimes(f, b, comm), m, comm_mode=comm_mode
            ).prefix_state(k)
            for f, b in fulls
        ]
        batch = SuffixSimBatch(
            states, [f[k:] for f, _ in fulls], [b[k:] for _, b in fulls]
        )
        its = batch.iteration_times().tolist()
        for j, (f, b) in enumerate(fulls):
            cold = PipelineSim(
                StageTimes(f, b, comm), m, comm_mode=comm_mode
            ).run()
            assert its[j] == cold.iteration_time
            _assert_results_identical(cold, batch.result(j))

    def test_need_start_false_is_identical_and_lazily_upgrades(self):
        fwd, bwd, comm, m = (1.0, 2.0, 1.5), (2.0, 1.0, 2.5), 0.1, 4
        state = PipelineSim(StageTimes(fwd, bwd, comm), m).prefix_state(1)
        rows_f = [(2.0, 1.5), (0.5, 3.0)]
        rows_b = [(1.0, 2.0), (2.5, 0.5)]
        eager = SuffixSimBatch(state, rows_f, rows_b)
        lean = SuffixSimBatch(state, rows_f, rows_b, need_start=False)
        assert lean.iteration_times().tolist() == (
            eager.iteration_times().tolist()
        )
        # start-dependent views trigger a transparent re-evaluation
        assert lean.startup_overheads().tolist() == (
            eager.startup_overheads().tolist()
        )
        _assert_results_identical(eager.result(1), lean.result(1))


class TestValidation:
    def test_resume_rejects_comm_mismatch(self):
        sim = PipelineSim(StageTimes((1.0, 2.0), (2.0, 1.0), 0.1), 2)
        state = sim.prefix_state(1)
        with pytest.raises(ValueError, match="comm"):
            PipelineSim.resume(state, StageTimes((2.0,), (1.0,), 0.2))

    def test_resume_rejects_wrong_suffix_width(self):
        sim = PipelineSim(StageTimes((1.0, 2.0, 3.0), (1.0,) * 3, 0.1), 2)
        state = sim.prefix_state(1)
        with pytest.raises(ValueError, match="suffix stages"):
            PipelineSim.resume(state, StageTimes((2.0,), (1.0,), 0.1))

    def test_extend_past_last_checkpointable_stage(self):
        state = PrefixState.initial(2, 2, 0.0)
        state = state.extend(1.0, 1.0)
        with pytest.raises(ValueError, match="cannot extend"):
            state.extend(1.0, 1.0)

    def test_batch_rejects_wrong_width_and_mixed_states(self):
        sim = PipelineSim(StageTimes((1.0, 2.0, 3.0), (1.0,) * 3, 0.1), 2)
        state = sim.prefix_state(1)
        with pytest.raises(ValueError, match="suffix columns"):
            SuffixSimBatch(state, [(1.0,)], [(1.0,)])
        other = PipelineSim(
            StageTimes((1.0, 2.0, 3.0), (1.0,) * 3, 0.2), 2
        ).prefix_state(1)
        with pytest.raises(ValueError, match="share"):
            SuffixSimBatch(
                [state, other], [(1.0, 1.0)] * 2, [(1.0, 1.0)] * 2
            )


class TestOracleIncrementalExact:
    """Pruned + incremental search == brute force, memo enabled."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=5, max_value=8),        # blocks
        st.integers(min_value=2, max_value=4),        # stages
        st.integers(min_value=1, max_value=6),        # micro-batches
        st.sampled_from(["paper", "edges"]),
        st.data(),
    )
    def test_incremental_equals_brute(self, blocks, stages, m, comm_mode, data):
        # zeros included: the regime where distinct cuts share identical
        # stage-time tuples and the dominance memo can actually prune.
        times = st.sampled_from([0.0, 0.5, 1.0, 2.0])
        fwd = [data.draw(times, label="fwd") for _ in range(blocks)]
        bwd = [data.draw(times, label="bwd") for _ in range(blocks)]
        prof = make_profile(fwd, bwd, data.draw(st.sampled_from([0.0, 0.1])))
        inc = exhaustive_partition(
            prof, stages, m, comm_mode=comm_mode, incremental=True
        )
        brute = exhaustive_partition(
            prof, stages, m, comm_mode=comm_mode, prune=False
        )
        assert inc.iteration_time == brute.iteration_time
        assert inc.partition.stages == brute.partition.stages

    def test_dominance_memo_fires_and_stays_exact(self):
        fwd = [1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0]
        bwd = [2.0, 0.0, 0.0, 2.0, 0.0, 2.0, 0.0, 0.0]
        prof = make_profile(fwd, bwd, 0.1)
        inc = exhaustive_partition(prof, 4, 4, incremental=True)
        brute = exhaustive_partition(prof, 4, 4, prune=False)
        assert inc.dominance_pruned > 0
        assert inc.iteration_time == brute.iteration_time
        assert inc.partition.stages == brute.partition.stages

    def test_planner_warm_start_preserves_argmin(self):
        fwd = [0.8, 1.2, 1.0, 0.7, 1.1, 0.9, 1.3, 0.6, 1.0, 0.8]
        bwd = [1.6, 2.1, 1.9, 1.5, 2.2, 1.8, 2.4, 1.3, 2.0, 1.7]
        prof = make_profile(fwd, bwd, 0.05)
        base = exhaustive_partition(
            prof, 4, 6, incremental=True, planner_warm_start=False
        )
        warm = exhaustive_partition(
            prof, 4, 6, incremental=True, planner_warm_start=True
        )
        brute = exhaustive_partition(prof, 4, 6, prune=False)
        for res in (base, warm):
            assert res.iteration_time == brute.iteration_time
            assert res.partition.stages == brute.partition.stages
