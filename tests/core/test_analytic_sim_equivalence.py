"""Vectorized PipelineSim vs the straightforward dict-based reference.

The production simulator caches the DAG topology per (n, m) shape, runs
the recurrences over flat index arrays and backtracks tight predecessors
lazily.  This file keeps the original dict-based evaluation of the same
recurrences as an executable specification and checks the two agree
**bit for bit** — start/end times, iteration time, startup, critical path
(including the Fig. 4 tie-breaks) and master stage.  Discrete duration
values are drawn so exact ties are common, which is precisely where the
tie-break rules matter.
"""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analytic_sim import STEADY, PipelineSim
from repro.core.partition import StageTimes


def reference_run(times, m, comm_mode):
    """The original dict-based evaluation (kept verbatim as the spec)."""
    sim = PipelineSim(times, m, comm_mode=comm_mode)
    n, comm = sim.n, times.comm
    phase, intra_pred = {}, {}
    for x in range(n):
        prev = None
        for op, ph in sim.stage_order(x):
            phase[op] = ph
            intra_pred[op] = prev
            prev = op

    preds, succs, indeg = {}, {op: [] for op in phase}, {}
    for op in phase:
        p = list(sim._dependencies(op))
        ip = intra_pred[op]
        if ip is not None:
            p.append(ip)
        preds[op] = p
        indeg[op] = len(p)
        for q in p:
            succs[q].append(op)

    start, end, tight_pred = {}, {}, {}
    ready = deque(op for op, d in indeg.items() if d == 0)
    while ready:
        op = ready.popleft()
        cross = sim._dependencies(op)
        if comm_mode == "paper":
            base = 0.0
            for q in preds[op]:
                base = max(base, end[q])
            s = base + comm if sim._comm_applies(op) else base
            tol = 1e-12 + 1e-9 * max(base, 1.0)
            tight = [q for q in preds[op] if end[q] >= base - tol]
        else:
            s = 0.0
            tight = []
            for q in preds[op]:
                arrival = end[q] + (comm if q in cross else 0.0)
                if arrival > s:
                    s = arrival
            for q in preds[op]:
                arrival = end[q] + (comm if q in cross else 0.0)
                if arrival >= s - (1e-12 + 1e-9 * max(s, 1.0)):
                    tight.append(q)
        tight_pred[op] = (
            max(tight, key=lambda q: (q[1], end[q])) if tight else None
        )
        start[op] = s
        end[op] = s + sim._duration(op)
        for nxt in succs[op]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)

    last_op = max(end, key=lambda op: (end[op], op[1]))
    path = []
    cur = last_op
    while cur is not None:
        path.append(cur)
        cur = tight_pred[cur]
    path.reverse()

    weight = [0.0] * n
    for op in path:
        if phase[op] == STEADY:
            weight[op[1]] += sim._duration(op)
    if max(weight) > 0.0:
        best = max(weight)
        master = max(x for x in range(n) if weight[x] >= best * (1 - 1e-9))
    else:
        total = times.total
        best = max(total)
        master = max(x for x in range(n) if total[x] >= best * (1 - 1e-9))

    return {
        "iteration_time": end[last_op],
        "startup": start[("F", n - 1, 0)],
        "master": master,
        "path": tuple(path),
        "start": start,
        "end": end,
        "phase": phase,
    }


def assert_bitwise_equal(times, m, comm_mode):
    got = PipelineSim(times, m, comm_mode=comm_mode).run()
    want = reference_run(times, m, comm_mode)
    assert got.iteration_time == want["iteration_time"]
    assert got.startup_overhead == want["startup"]
    assert got.master_stage == want["master"]
    assert got.critical_path == want["path"]
    assert got.op_start == want["start"]
    assert got.op_end == want["end"]
    assert got.op_phase == want["phase"]


#: Discrete values make exact end-time ties (the tie-break cases) common.
_TIE_VALUES = (0.5, 1.0, 1.0, 2.0)


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=12),
    st.sampled_from(["paper", "edges"]),
    st.data(),
)
def test_matches_reference_with_ties(n, m, comm_mode, data):
    fwd = tuple(data.draw(st.sampled_from(_TIE_VALUES)) for _ in range(n))
    bwd = tuple(data.draw(st.sampled_from(_TIE_VALUES)) for _ in range(n))
    comm = data.draw(st.sampled_from([0.0, 0.1]))
    assert_bitwise_equal(StageTimes(fwd, bwd, comm), m, comm_mode)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=10),
    st.sampled_from(["paper", "edges"]),
    st.data(),
)
def test_matches_reference_with_random_floats(n, m, comm_mode, data):
    fwd = tuple(
        data.draw(st.floats(min_value=0.05, max_value=3.0)) for _ in range(n)
    )
    bwd = tuple(
        data.draw(st.floats(min_value=0.05, max_value=3.0)) for _ in range(n)
    )
    comm = data.draw(st.floats(min_value=0.0, max_value=0.5))
    assert_bitwise_equal(StageTimes(fwd, bwd, comm), m, comm_mode)


@pytest.mark.parametrize("comm_mode", ["paper", "edges"])
@pytest.mark.parametrize("n,m", [(1, 1), (1, 8), (4, 1), (4, 8), (6, 3), (5, 20)])
def test_matches_reference_balanced(n, m, comm_mode):
    """Perfectly balanced stages: every recurrence step is an exact tie."""
    assert_bitwise_equal(
        StageTimes((1.0,) * n, (2.0,) * n, 0.0), m, comm_mode
    )
    assert_bitwise_equal(
        StageTimes((1.0,) * n, (2.0,) * n, 0.25), m, comm_mode
    )


def test_shape_cache_reuse():
    """Two sims of one (n, m) shape share the cached topology."""
    a = PipelineSim(StageTimes((1.0, 2.0), (2.0, 1.0), 0.1), 6)
    b = PipelineSim(StageTimes((3.0, 1.0), (1.0, 3.0), 0.0), 6)
    assert a._shape is b._shape
    assert PipelineSim(StageTimes((1.0,), (1.0,), 0.0), 6)._shape is not a._shape
