"""End-to-end AutoPipe solution tests."""

import pytest

from repro.config import TrainConfig
from repro.core.autopipe import autopipe_plan
from repro.hardware.device import DEFAULT_CLUSTER_HW
from tests.conftest import TINY


@pytest.fixture(scope="module")
def solution():
    train = TrainConfig(micro_batch_size=4, global_batch_size=32)
    return autopipe_plan(
        TINY, DEFAULT_CLUSTER_HW, train, num_stages=3, num_micro_batches=8
    )


class TestAutopipePlan:
    def test_solution_components(self, solution):
        assert solution.num_stages == 3
        assert solution.slice_plan is not None
        assert solution.planner.evaluations >= 1
        assert solution.predicted_iteration_time > 0

    def test_slicer_consistent_with_partition(self, solution):
        assert solution.slice_plan.num_micro_batches == 8
        assert 1 <= solution.slice_plan.num_sliced <= 2

    def test_stage_times_match_partition(self, solution):
        assert solution.times.num_stages == 3
        assert sum(solution.times.fwd) == pytest.approx(
            solution.profile.total_fwd_time()
        )

    def test_slicer_can_be_disabled(self):
        train = TrainConfig(micro_batch_size=4, global_batch_size=32)
        sol = autopipe_plan(
            TINY, DEFAULT_CLUSTER_HW, train, num_stages=3,
            num_micro_batches=8, enable_slicer=False,
        )
        assert sol.slice_plan is None

    def test_profile_reuse(self, solution):
        train = TrainConfig(micro_batch_size=4, global_batch_size=32)
        sol = autopipe_plan(
            TINY, DEFAULT_CLUSTER_HW, train, num_stages=3,
            num_micro_batches=8, profile=solution.profile,
        )
        assert sol.profile is solution.profile
        assert sol.partition == solution.partition
