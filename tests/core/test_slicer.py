"""Slicer (Algorithm 2) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import StageTimes
from repro.core.slicer import SlicePlan, make_slice_plan, solve_slice_count


def balanced(n, f=1.0, b=2.0, comm=0.0):
    return StageTimes((f,) * n, (b,) * n, comm)


class TestSolveSliceCount:
    def test_single_stage_no_slicing(self):
        assert solve_slice_count(balanced(1), 8) == 0

    def test_paper_fig8_example_slices_one(self):
        """A balanced 4-stage pipeline slices exactly micro-batch 0."""
        assert solve_slice_count(balanced(4), 8) == 1

    def test_deeper_pipelines_slice_more(self):
        shallow = solve_slice_count(balanced(4), 16)
        deep = solve_slice_count(balanced(12), 24)
        assert deep >= shallow

    def test_at_least_one_for_multi_stage(self):
        for n in (2, 3, 4, 8):
            assert solve_slice_count(balanced(n), 2 * n) >= 1

    def test_capped_by_pipeline_depth(self):
        for n in (2, 4, 8):
            assert solve_slice_count(balanced(n), 100) <= n - 1

    def test_capped_by_micro_batches(self):
        assert solve_slice_count(balanced(8), 1) <= 1

    def test_rejects_non_positive_micro_batches(self):
        with pytest.raises(ValueError, match="num_micro_batches"):
            solve_slice_count(balanced(4), 0)
        with pytest.raises(ValueError, match="num_micro_batches"):
            solve_slice_count(balanced(4), -3)

    def test_rejects_zero_time_stages(self):
        with pytest.raises(ValueError, match="non-positive forward"):
            solve_slice_count(StageTimes((1.0, 0.0), (2.0, 2.0), 0.1), 4)
        with pytest.raises(ValueError, match="non-positive backward"):
            solve_slice_count(StageTimes((1.0, 1.0), (2.0, 0.0), 0.1), 4)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=32),
        st.data(),
    )
    def test_result_always_in_bounds(self, n, m, data):
        fwd = tuple(
            data.draw(st.floats(min_value=0.05, max_value=2.0)) for _ in range(n)
        )
        bwd = tuple(
            data.draw(st.floats(min_value=0.05, max_value=4.0)) for _ in range(n)
        )
        comm = data.draw(st.floats(min_value=0.0, max_value=0.3))
        mb = solve_slice_count(StageTimes(fwd, bwd, comm), m)
        assert 1 <= mb <= min(n - 1, m) or (mb == 1 and m == 1)


class TestSlicePlan:
    def test_units_expand_sliced(self):
        plan = SlicePlan(num_sliced=2, num_micro_batches=4)
        assert plan.units() == (
            (0, 0), (0, 1), (1, 0), (1, 1), (2, -1), (3, -1)
        )
        assert plan.num_units == 6

    def test_is_sliced(self):
        plan = SlicePlan(num_sliced=1, num_micro_batches=4)
        assert plan.is_sliced(0)
        assert not plan.is_sliced(1)

    def test_sliced_tuple(self):
        plan = SlicePlan(num_sliced=3, num_micro_batches=8)
        assert plan.sliced == (0, 1, 2)

    def test_zero_slices_is_plain(self):
        plan = SlicePlan(num_sliced=0, num_micro_batches=3)
        assert plan.units() == ((0, -1), (1, -1), (2, -1))

    def test_validation(self):
        with pytest.raises(ValueError):
            SlicePlan(num_sliced=-1, num_micro_batches=4)
        with pytest.raises(ValueError):
            SlicePlan(num_sliced=5, num_micro_batches=4)


class TestMakeSlicePlan:
    def test_plan_carries_algorithm_output(self):
        times = balanced(4)
        plan = make_slice_plan(times, 8)
        assert plan.num_sliced == solve_slice_count(times, 8)
        assert plan.num_micro_batches == 8
        assert plan.aggregate_last_warmup_comm

    def test_aggregation_flag_propagates(self):
        plan = make_slice_plan(balanced(4), 8, aggregate_last_warmup_comm=False)
        assert not plan.aggregate_last_warmup_comm
