"""Multiprocess oracle: bit-identity with the serial search.

The contract the ISSUE demands: ``exhaustive_partition(jobs=N)`` returns
the *bit-identical* argmin of the serial branch-and-bound — same
partition, same iteration time — for every search mode (incremental,
pruned, brute, robust) and both comm models.  The shared incumbent bound
only ever tightens pruning; every published bound is itself a simulated
candidate, and the deterministic merge reuses the serial tie-break, so
worker count and scheduling order must never leak into the result.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exhaustive import ExhaustiveResult, exhaustive_partition
from repro.core.parallel_search import (
    CandidatePool,
    default_plan_jobs,
    resolve_plan_jobs,
    set_default_plan_jobs,
)
from repro.core.partition import StageTimes
from repro.core.planner import SimCache, plan_partition
from repro.core.analytic_sim import PipelineSim
from repro.robustness import RobustObjective, StageCostNoise

from tests.core.test_search_properties import make_profile

_TIE_HEAVY = st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0])

#: a fixed tie-heavy profile: many partitions share the optimum, so any
#: merge-order dependence would show up as a different tie-break winner.
_FWD = [1.0, 2.0, 1.5, 0.5, 3.0, 1.0, 2.0, 0.5, 1.5, 1.0, 2.0, 1.0]
_BWD = [2.0, 1.0, 0.5, 1.5, 1.0, 3.0, 0.5, 2.0, 1.0, 1.5, 1.0, 2.0]


def _assert_same(parallel: ExhaustiveResult, serial: ExhaustiveResult):
    assert parallel.partition.sizes == serial.partition.sizes
    assert parallel.iteration_time == serial.iteration_time  # bitwise
    assert parallel.robust_value == serial.robust_value
    assert parallel.sim.iteration_time == serial.sim.iteration_time


class TestOracleBitIdentity:
    @pytest.mark.parametrize("comm_mode", ["paper", "edges"])
    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_matches_serial(self, comm_mode, incremental, jobs):
        profile = make_profile(_FWD, _BWD, 0.25)
        kwargs = dict(comm_mode=comm_mode, incremental=incremental)
        serial = exhaustive_partition(profile, 5, 8, **kwargs)
        parallel = exhaustive_partition(profile, 5, 8, jobs=jobs, **kwargs)
        _assert_same(parallel, serial)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_brute_force_matches_serial(self, jobs):
        profile = make_profile(_FWD[:8], _BWD[:8], 0.5)
        serial = exhaustive_partition(profile, 3, 6, prune=False)
        parallel = exhaustive_partition(profile, 3, 6, prune=False, jobs=jobs)
        _assert_same(parallel, serial)
        # Brute force simulates the whole space in both drivers.
        assert parallel.evaluations == serial.evaluations

    def test_robust_matches_serial(self):
        profile = make_profile(_FWD[:9], _BWD[:9], 0.25)
        robust = RobustObjective(
            (StageCostNoise(sigma=0.1),), draws=16, seed=3
        )
        serial = exhaustive_partition(profile, 4, 6, robust=robust)
        parallel = exhaustive_partition(profile, 4, 6, robust=robust, jobs=2)
        _assert_same(parallel, serial)
        assert parallel.robust_value is not None

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_random_profiles(self, data):
        """Random tie-saturated profiles: jobs=2 equals serial exactly."""
        n = data.draw(st.integers(min_value=5, max_value=9))
        p = data.draw(st.integers(min_value=2, max_value=min(n, 4)))
        m = data.draw(st.integers(min_value=1, max_value=8))
        comm_mode = data.draw(st.sampled_from(["paper", "edges"]))
        fwd = [data.draw(_TIE_HEAVY) for _ in range(n)]
        bwd = [data.draw(_TIE_HEAVY) for _ in range(n)]
        profile = make_profile(fwd, bwd, 0.25)
        serial = exhaustive_partition(profile, p, m, comm_mode=comm_mode)
        parallel = exhaustive_partition(
            profile, p, m, comm_mode=comm_mode, jobs=2
        )
        _assert_same(parallel, serial)

    def test_observability_fields(self):
        profile = make_profile(_FWD, _BWD, 0.25)
        serial = exhaustive_partition(profile, 5, 8)
        parallel = exhaustive_partition(profile, 5, 8, jobs=4)
        assert serial.jobs == 1 and serial.worker_subtrees == ()
        if parallel.jobs > 1:  # pool available in this environment
            assert sum(parallel.worker_subtrees) == len(_FWD) - 5 + 1
            assert parallel.worker_subtrees == tuple(
                sorted(parallel.worker_subtrees, reverse=True)
            )
        assert serial.search_seconds > 0.0
        assert serial.sims_per_second > 0.0

    def test_jobs_one_is_serial(self):
        profile = make_profile(_FWD[:8], _BWD[:8], 0.25)
        a = exhaustive_partition(profile, 4, 4)
        b = exhaustive_partition(profile, 4, 4, jobs=1)
        _assert_same(b, a)
        assert b.jobs == 1


class TestPlannerBitIdentity:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_matches_serial_including_history(self, jobs):
        profile = make_profile(_FWD, _BWD, 0.25)
        serial = plan_partition(profile, 5, 8, keep_history=True)
        parallel = plan_partition(profile, 5, 8, keep_history=True, jobs=jobs)
        assert parallel.partition.sizes == serial.partition.sizes
        assert parallel.iteration_time == serial.iteration_time
        assert parallel.evaluations == serial.evaluations
        assert parallel.history == serial.history

    def test_sim_cache_counters_match(self):
        """Prefetch must not change what the shared memo observes."""
        profile = make_profile(_FWD[:10], _BWD[:10], 0.5)
        a, b = SimCache(), SimCache()
        plan_partition(profile, 4, 8, sim_cache=a)
        plan_partition(profile, 4, 8, sim_cache=b, jobs=3)
        assert (a.hits, a.misses) == (b.hits, b.misses)


class TestCandidatePool:
    def test_matches_scalar_sim(self):
        waves = [
            StageTimes((1.0, 2.0), (2.0, 1.0), 0.25),
            StageTimes((1.5, 1.5), (1.0, 2.5), 0.25),
            StageTimes((3.0, 0.5), (0.5, 3.0), 0.25),
        ]
        with CandidatePool(jobs=2) as pool:
            sims = pool.evaluate(waves, 6, "paper")
        for times, sim in zip(waves, sims):
            scalar = PipelineSim(times, 6, comm_mode="paper").run()
            assert sim.iteration_time == scalar.iteration_time
            assert sim.startup_overhead == scalar.startup_overhead

    def test_single_wave_runs_inline(self):
        with CandidatePool(jobs=2) as pool:
            [sim] = pool.evaluate(
                [StageTimes((1.0,), (2.0,), 0.0)], 4, "paper"
            )
        assert sim.iteration_time == PipelineSim(
            StageTimes((1.0,), (2.0,), 0.0), 4
        ).run().iteration_time

    def test_jobs_one_is_inactive(self):
        pool = CandidatePool(jobs=1)
        assert not pool.active
        pool.close()


class TestDefaults:
    def test_resolve_and_set(self):
        assert default_plan_jobs() == 1
        assert resolve_plan_jobs(None) == 1
        assert resolve_plan_jobs(3) == 3
        try:
            set_default_plan_jobs(4)
            assert resolve_plan_jobs(None) == 4
        finally:
            set_default_plan_jobs(1)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            set_default_plan_jobs(0)
        with pytest.raises(ValueError):
            resolve_plan_jobs(0)
        with pytest.raises(ValueError):
            exhaustive_partition(
                make_profile(_FWD[:6], _BWD[:6], 0.1), 2, 4, jobs=0
            )
