"""Cluster-level strategy tests: dp/pp choice and memory repair."""

import pytest

from repro.config import TrainConfig
from repro.core.balance_dp import balanced_partition
from repro.core.strategy import autopipe_config, repair_memory
from repro.hardware.device import DEFAULT_CLUSTER_HW
from repro.models.zoo import GPT2_1_3B, GPT2_345M
from repro.profiling import profile_model


def make_profile(model, mbs, gbs):
    return profile_model(
        model, DEFAULT_CLUSTER_HW,
        TrainConfig(micro_batch_size=mbs, global_batch_size=gbs),
    )


class TestAutopipeConfig:
    def test_low_memory_uses_pure_data_parallelism(self):
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = autopipe_config(profile, 16, 128)
        assert cfg.num_stages == 1
        assert cfg.replicas == (16,)

    def test_high_memory_picks_two_stages(self):
        """GPT-2 345M at mbs 32 cannot fit one GPU: shallowest pipeline."""
        profile = make_profile(GPT2_345M, 32, 512)
        cfg = autopipe_config(profile, 4, 512)
        assert cfg.num_stages == 2
        assert cfg.replicas == (2, 2)

    def test_gpt13b_needs_four_stages(self):
        profile = make_profile(GPT2_1_3B, 16, 512)
        cfg = autopipe_config(profile, 4, 512)
        assert cfg.num_stages == 4

    def test_plan_fits_memory(self):
        from repro.baselines.common import config_memory
        profile = make_profile(GPT2_345M, 32, 512)
        cfg = autopipe_config(profile, 4, 512)
        peaks = config_memory(
            profile, cfg.partition, cfg.replicas, 16, 32, "stream"
        )
        assert all(p <= profile.hardware.gpu_memory for p in peaks)

    def test_search_time_recorded(self):
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = autopipe_config(profile, 4, 128)
        assert cfg.search_seconds >= 0

    def test_indivisible_batch_rejected(self):
        profile = make_profile(GPT2_345M, 4, 128)
        with pytest.raises(ValueError):
            autopipe_config(profile, 4, 130)


class TestRepairMemory:
    def test_fitting_partition_unchanged(self):
        profile = make_profile(GPT2_345M, 4, 64)
        part = balanced_partition(profile.block_times(), 4)
        repaired = repair_memory(profile, part, 1, 16, 4)
        assert repaired == part

    def test_overloaded_logits_stage_is_lightened(self):
        profile = make_profile(GPT2_345M, 32, 512)
        part = balanced_partition(profile.block_times(), 2)
        repaired = repair_memory(profile, part, 2, 16, 32)
        assert repaired is not None
        # The last (loss-head) stage lost blocks to the first.
        assert repaired.sizes[-1] <= part.sizes[-1]
        from repro.baselines.common import config_memory
        peaks = config_memory(profile, repaired, (2, 2), 16, 32, "stream")
        assert all(p <= profile.hardware.gpu_memory for p in peaks)

    def test_impossible_case_returns_none(self):
        profile = make_profile(GPT2_1_3B, 16, 256)
        part = balanced_partition(profile.block_times(), 2)
        assert repair_memory(profile, part, 2, 16, 16) is None
