"""PartitionScheme and StageTimes invariants (unit + hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.partition import (
    PartitionScheme,
    StageTimes,
    stage_params,
    stage_times,
)


@st.composite
def sizes_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [draw(st.integers(min_value=1, max_value=5)) for _ in range(n)]


class TestPartitionScheme:
    def test_from_sizes_roundtrip(self):
        p = PartitionScheme.from_sizes([3, 2, 4])
        assert p.sizes == (3, 2, 4)
        assert p.num_blocks == 9
        assert p.stages[1] == (3, 4)

    def test_from_boundaries(self):
        p = PartitionScheme.from_boundaries(9, [3, 5])
        assert p.sizes == (3, 2, 4)
        assert p.boundaries == (3, 5)

    def test_bad_boundaries(self):
        with pytest.raises(ValueError):
            PartitionScheme.from_boundaries(9, [5, 3])
        with pytest.raises(ValueError):
            PartitionScheme.from_boundaries(9, [0, 3])

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme.from_sizes([3, 0, 2])

    def test_noncontiguous_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme(((0, 2), (1, 3)))

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme(((0, 1), (3, 4)))

    def test_stage_of_block(self):
        p = PartitionScheme.from_sizes([3, 2, 4])
        assert p.stage_of_block(0) == 0
        assert p.stage_of_block(4) == 1
        assert p.stage_of_block(8) == 2
        with pytest.raises(ValueError):
            p.stage_of_block(9)

    @given(sizes_strategy())
    def test_boundaries_roundtrip(self, sizes):
        p = PartitionScheme.from_sizes(sizes)
        q = PartitionScheme.from_boundaries(p.num_blocks, p.boundaries)
        assert p == q

    @given(sizes_strategy())
    def test_sizes_sum_to_blocks(self, sizes):
        p = PartitionScheme.from_sizes(sizes)
        assert sum(p.sizes) == p.num_blocks


class TestStageTimes:
    def test_totals(self):
        t = StageTimes((1.0, 2.0), (3.0, 4.0), 0.1)
        assert t.total == (4.0, 6.0)

    def test_balance_std(self):
        balanced = StageTimes((1.0, 1.0), (2.0, 2.0), 0.0)
        skewed = StageTimes((1.0, 3.0), (2.0, 6.0), 0.0)
        assert balanced.balance_std() == pytest.approx(0.0)
        assert skewed.balance_std() > 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            StageTimes((1.0,), (1.0, 2.0), 0.0)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            StageTimes((-1.0,), (1.0,), 0.0)


class TestAggregation:
    def test_stage_times_sum_blocks(self, tiny_profile):
        p = PartitionScheme.from_sizes([5, 5, tiny_profile.num_blocks - 10])
        times = stage_times(p, tiny_profile)
        assert sum(times.fwd) == pytest.approx(tiny_profile.total_fwd_time())
        assert sum(times.total) == pytest.approx(tiny_profile.total_time())

    def test_stage_params_sum(self, tiny_profile):
        p = PartitionScheme.from_sizes([5, tiny_profile.num_blocks - 5])
        assert sum(stage_params(p, tiny_profile)) == pytest.approx(
            tiny_profile.total_params()
        )

    def test_mismatched_block_count(self, tiny_profile):
        p = PartitionScheme.from_sizes([2, 2])
        with pytest.raises(ValueError):
            stage_times(p, tiny_profile)

    def test_layers_per_stage_sums_to_model(self, tiny_profile):
        n = tiny_profile.num_blocks
        p = PartitionScheme.from_sizes([n // 2, n - n // 2])
        layers = p.layers_per_stage(tiny_profile)
        assert sum(layers) == tiny_profile.model.num_layers

    def test_describe_mentions_stages(self, tiny_profile):
        n = tiny_profile.num_blocks
        p = PartitionScheme.from_sizes([n // 2, n - n // 2])
        text = p.describe(tiny_profile)
        assert "stage0" in text and "stage1" in text
