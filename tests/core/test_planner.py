"""Heuristic planner tests: quality, ablations, determinism."""

import pytest

from repro.baselines.megatron import uniform_partition
from repro.core.analytic_sim import simulate_partition
from repro.core.balance_dp import balanced_partition
from repro.core.partition import stage_times
from repro.core.planner import _cooldown_adjust, _UnitSpace, plan_partition


class TestPlanQuality:
    @pytest.mark.parametrize("stages,m", [(2, 4), (3, 6), (4, 8)])
    def test_beats_or_matches_megatron(self, gpt2_profile, stages, m):
        planned = plan_partition(gpt2_profile, stages, m)
        if gpt2_profile.model.num_layers % stages == 0:
            mega = uniform_partition(gpt2_profile, stages)
            mega_sim = simulate_partition(gpt2_profile, mega, m)
            assert planned.iteration_time <= mega_sim.iteration_time + 1e-12

    def test_beats_or_matches_algorithm1_seed(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8)
        seed = balanced_partition(gpt2_profile.block_times(), 4)
        seed_sim = simulate_partition(gpt2_profile, seed, 8)
        assert planned.iteration_time <= seed_sim.iteration_time + 1e-12

    def test_partition_is_valid(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8)
        assert planned.partition.num_blocks == gpt2_profile.num_blocks
        assert planned.partition.num_stages == 4

    def test_deterministic(self, gpt2_profile):
        a = plan_partition(gpt2_profile, 4, 8)
        b = plan_partition(gpt2_profile, 4, 8)
        assert a.partition == b.partition
        assert a.iteration_time == b.iteration_time

    def test_evaluations_bounded(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8, max_evaluations=32)
        assert planned.evaluations <= 32

    def test_search_time_recorded(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8)
        assert planned.search_seconds > 0

    def test_history_collection(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8, keep_history=True)
        assert len(planned.history) == planned.evaluations

    def test_too_many_stages_rejected(self, tiny_profile):
        with pytest.raises(ValueError):
            plan_partition(tiny_profile, tiny_profile.num_blocks + 1, 4)


class TestGranularityAblation:
    def test_layer_granularity_runs(self, gpt2_profile):
        planned = plan_partition(gpt2_profile, 4, 8, granularity="layer")
        assert planned.granularity == "layer"
        # Layer granularity never splits a transformer layer.
        for layers in planned.partition.layers_per_stage(gpt2_profile):
            assert layers == int(layers)

    def test_sublayer_at_least_as_good(self, gpt2_profile):
        """Fig 3's claim: finer granularity can only improve the optimum."""
        sub = plan_partition(gpt2_profile, 4, 8, granularity="sublayer")
        layer = plan_partition(gpt2_profile, 4, 8, granularity="layer")
        assert sub.iteration_time <= layer.iteration_time + 1e-12

    def test_sublayer_strictly_better_on_odd_split(self, gpt2_profile):
        """With a depth that does not divide the layers, halves help."""
        sub = plan_partition(gpt2_profile, 5, 10, granularity="sublayer")
        layer = plan_partition(gpt2_profile, 5, 10, granularity="layer")
        assert sub.iteration_time <= layer.iteration_time

    def test_unknown_granularity(self, gpt2_profile):
        with pytest.raises(ValueError):
            plan_partition(gpt2_profile, 4, 8, granularity="token")


class TestCooldownAdjustAblation:
    def test_adjustment_never_hurts_final_result(self, gpt2_profile):
        on = plan_partition(gpt2_profile, 4, 8, cooldown_adjust=True)
        off = plan_partition(gpt2_profile, 4, 8, cooldown_adjust=False)
        # Both searches keep the best seen, so enabling the extra move
        # cannot make the outcome worse by more than float noise.
        assert on.iteration_time <= off.iteration_time * 1.001

    def test_cooldown_adjust_preserves_blocks(self, gpt2_profile):
        space = _UnitSpace(gpt2_profile, "sublayer")
        sizes = tuple(
            balanced_partition(gpt2_profile.block_times(), 4).sizes
        )
        adjusted = _cooldown_adjust(sizes, 1, space)
        assert sum(adjusted) == sum(sizes)
        assert all(s >= 1 for s in adjusted)
        assert adjusted[:2] == sizes[:2]  # stages up to the master untouched

    def test_cooldown_adjust_noop_for_last_master(self, gpt2_profile):
        space = _UnitSpace(gpt2_profile, "sublayer")
        sizes = tuple(
            balanced_partition(gpt2_profile.block_times(), 4).sizes
        )
        assert _cooldown_adjust(sizes, 3, space) == sizes


class TestEquationOne:
    def test_adjusted_prefixes_respect_bound_when_feasible(self, gpt2_profile):
        """After adjustment, Eq (1) holds for feasible prefixes."""
        space = _UnitSpace(gpt2_profile, "sublayer")
        sizes = tuple(
            balanced_partition(gpt2_profile.block_times(), 4).sizes
        )
        master = 0
        adjusted = _cooldown_adjust(sizes, master, space)
        t = space.stage_times(adjusted)
        b_master = t.bwd[master]
        cum = 0.0
        for offset, s in enumerate(range(master + 1, 3), start=1):
            cum += t.fwd[s] + t.bwd[s]
            # Max-fill guarantees the bound wherever a single unit fits.
            if t.fwd[s] + t.bwd[s] <= b_master:
                assert cum <= offset * b_master + t.fwd[s] + t.bwd[s]


class TestSimCache:
    def test_clear_resets_entries_and_counters(self, gpt2_profile):
        from repro.core.planner import SimCache

        cache = SimCache()
        plan_partition(gpt2_profile, 4, 8, sim_cache=cache)
        assert cache.hits + cache.misses > 0
        cache.clear()
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.hit_rate == 0.0
        # a cleared cache re-simulates: first run after clear has no hits
        plan_partition(gpt2_profile, 4, 8, sim_cache=cache)
        assert cache.misses > 0

    def test_hit_rate_tracks_reuse(self, gpt2_profile):
        from repro.core.planner import SimCache

        cache = SimCache()
        plan_partition(gpt2_profile, 4, 8, sim_cache=cache)
        first_rate = cache.hit_rate
        plan_partition(gpt2_profile, 4, 8, sim_cache=cache)
        assert 0.0 <= first_rate <= cache.hit_rate <= 1.0

    def test_default_cache_is_resettable(self):
        from repro.core.planner import default_sim_cache

        cache = default_sim_cache()
        cache.clear()
        assert cache.hit_rate == 0.0


class TestIncrementalPlanner:
    @pytest.mark.parametrize("stages,m", [(2, 4), (4, 8), (6, 12)])
    def test_incremental_matches_default_path(self, gpt2_profile, stages, m):
        """plan_partition(incremental=True) is bit-identical in outcome."""
        base = plan_partition(gpt2_profile, stages, m, incremental=False)
        inc = plan_partition(gpt2_profile, stages, m, incremental=True)
        assert inc.partition.stages == base.partition.stages
        assert inc.iteration_time == base.iteration_time
        assert inc.evaluations == base.evaluations
