"""Algorithm 1 (min-max partition DP) — exactness against brute force."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.balance_dp import balanced_partition, bottleneck, min_max_partition


def brute_force_bottleneck(weights, p):
    """Minimal max-group weight over all contiguous p-partitions."""
    n = len(weights)
    best = float("inf")
    for cuts in itertools.combinations(range(1, n), p - 1):
        edges = [0, *cuts, n]
        worst = max(
            sum(weights[a:b]) for a, b in zip(edges, edges[1:])
        )
        best = min(best, worst)
    return best


class TestMinMaxPartition:
    def test_trivial_single_group(self):
        assert min_max_partition([1, 2, 3], 1) == [3]

    def test_each_block_own_group(self):
        assert min_max_partition([1, 2, 3], 3) == [1, 1, 1]

    def test_uniform_weights_split_evenly(self):
        sizes = min_max_partition([1.0] * 12, 4)
        assert sizes == [3, 3, 3, 3]

    def test_heavy_tail_gets_smaller_group(self):
        # Last block is huge: the optimum isolates it -> max group weight 5.
        weights = [1, 1, 1, 1, 1, 5]
        sizes = min_max_partition(weights, 2)
        assert sizes == [5, 1]
        assert bottleneck(weights, sizes) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            min_max_partition([], 1)
        with pytest.raises(ValueError):
            min_max_partition([1.0], 2)
        with pytest.raises(ValueError):
            min_max_partition([1.0], 0)
        with pytest.raises(ValueError):
            min_max_partition([-1.0, 1.0], 1)

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=9),
        st.integers(min_value=1, max_value=9),
    )
    def test_optimal_versus_brute_force(self, weights, p):
        if p > len(weights):
            return
        sizes = min_max_partition(weights, p)
        assert len(sizes) == p
        assert sum(sizes) == len(weights)
        assert all(s >= 1 for s in sizes)
        got = bottleneck(weights, sizes)
        best = brute_force_bottleneck(weights, p)
        assert got == pytest.approx(best, abs=1e-9)


class TestBalancedPartition:
    def test_returns_partition_scheme(self):
        p = balanced_partition([1.0, 2.0, 1.0, 2.0], 2)
        assert p.num_stages == 2
        assert p.num_blocks == 4

    def test_bottleneck_helper_validates(self):
        with pytest.raises(ValueError):
            bottleneck([1, 2, 3], [1, 1])
