"""Property tests for the batched simulator and the pruned oracle.

Two equivalences the perf work must never break:

* :class:`PipelineSimBatch` is bit-for-bit identical to ``K`` scalar
  :class:`PipelineSim` runs — iteration times, startup overheads and the
  materialised winner ``SimResult``;
* the branch-and-bound oracle (``prune=True``) returns the exact
  brute-force argmin — same partition, same iteration time — including
  on tie-heavy profiles where many partitions share the optimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HardwareConfig, ModelConfig, TrainConfig
from repro.core.analytic_sim import PipelineSim, PipelineSimBatch
from repro.core.exhaustive import exhaustive_partition
from repro.core.partition import StageTimes
from repro.models.blocks import Block, BlockKind
from repro.profiling.modelconfig import BlockProfile, ModelProfile

_MODEL = ModelConfig(name="synthetic", num_layers=1, hidden_size=64, num_heads=4)
_HW = HardwareConfig()
_TRAIN = TrainConfig(micro_batch_size=1, global_batch_size=8)

#: discrete time values — draws collide constantly, so random profiles are
#: saturated with exact ties (the argmin tie-break's worst case).
_TIE_HEAVY = st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0])
_CONTINUOUS = st.floats(min_value=0.01, max_value=5.0, allow_nan=False)


def make_profile(fwd, bwd, comm):
    """A synthetic ModelProfile carrying exactly these block times."""
    blocks = tuple(
        BlockProfile(
            block=Block(index=i, kind=BlockKind.ATTENTION, layer_index=i),
            fwd_time=f,
            bwd_time=b,
            params=1.0,
            activation_out_bytes=1.0,
            stash_bytes=1.0,
            workspace_bytes=1.0,
        )
        for i, (f, b) in enumerate(zip(fwd, bwd))
    )
    return ModelProfile(
        model=_MODEL, hardware=_HW, train=_TRAIN, blocks=blocks,
        comm_time=comm, boundary_bytes=1.0,
    )


class TestBatchMatchesScalar:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),     # stages
        st.integers(min_value=1, max_value=8),     # micro-batches
        st.integers(min_value=1, max_value=4),     # candidates
        st.sampled_from(["paper", "edges"]),
        st.booleans(),                             # tie-heavy vs continuous
        st.data(),
    )
    def test_bit_exact(self, p, m, k, comm_mode, ties, data):
        value = _TIE_HEAVY if ties else _CONTINUOUS
        comm = data.draw(st.sampled_from([0.0, 0.5, 1.0]))
        candidates = [
            StageTimes(
                tuple(data.draw(value) for _ in range(p)),
                tuple(data.draw(value) for _ in range(p)),
                comm,
            )
            for _ in range(k)
        ]
        batch = PipelineSimBatch.from_stage_times(
            candidates, m, comm_mode=comm_mode
        )
        its = batch.iteration_times()
        starts = batch.startup_overheads()
        for i, times in enumerate(candidates):
            scalar = PipelineSim(times, m, comm_mode=comm_mode).run()
            assert its[i] == scalar.iteration_time          # bitwise
            assert starts[i] == scalar.startup_overhead     # bitwise
            winner = batch.result(i)
            assert winner.iteration_time == scalar.iteration_time
            assert winner.startup_overhead == scalar.startup_overhead
            assert winner.master_stage == scalar.master_stage
            assert winner.critical_path == scalar.critical_path

    def test_mixed_comm_rejected(self):
        with pytest.raises(ValueError, match="share one comm"):
            PipelineSimBatch.from_stage_times(
                [StageTimes((1.0,), (2.0,), 0.1),
                 StageTimes((1.0,), (2.0,), 0.2)],
                4,
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PipelineSimBatch(
                np.ones((2, 3)), np.ones((2, 4)), 0.1, 4
            )


class TestPrunedMatchesBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=4, max_value=9),     # blocks
        st.data(),
    )
    def test_same_argmin(self, n, data):
        p = data.draw(st.integers(min_value=1, max_value=min(n, 5)))
        m = data.draw(st.integers(min_value=1, max_value=8))
        comm_mode = data.draw(st.sampled_from(["paper", "edges"]))
        ties = data.draw(st.booleans())
        value = _TIE_HEAVY if ties else _CONTINUOUS
        fwd = [data.draw(value) for _ in range(n)]
        bwd = [data.draw(value) for _ in range(n)]
        comm = data.draw(st.sampled_from([0.0, 0.25, 1.0]))
        profile = make_profile(fwd, bwd, comm)
        brute = exhaustive_partition(
            profile, p, m, comm_mode=comm_mode, prune=False
        )
        pruned = exhaustive_partition(
            profile, p, m, comm_mode=comm_mode, prune=True
        )
        assert pruned.partition.sizes == brute.partition.sizes
        assert pruned.iteration_time == brute.iteration_time  # bitwise
        assert pruned.evaluations <= brute.evaluations

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_small_chunks_change_nothing(self, data):
        """Chunked flushing must not affect the argmin (order independence)."""
        n = data.draw(st.integers(min_value=5, max_value=8))
        p = data.draw(st.integers(min_value=2, max_value=4))
        fwd = [data.draw(_TIE_HEAVY) for _ in range(n)]
        bwd = [data.draw(_TIE_HEAVY) for _ in range(n)]
        profile = make_profile(fwd, bwd, 0.25)
        big = exhaustive_partition(profile, p, 4, chunk_size=1024)
        tiny = exhaustive_partition(profile, p, 4, chunk_size=1)
        assert tiny.partition.sizes == big.partition.sizes
        assert tiny.iteration_time == big.iteration_time
