"""Exhaustive-search oracle tests: the heuristic Planner's optimality gap."""

import pytest

from repro.core.exhaustive import (
    count_partitions,
    exhaustive_partition,
    iter_partitions,
)
from repro.core.planner import plan_partition


class TestEnumeration:
    def test_count_matches_enumeration(self):
        assert count_partitions(6, 3) == len(list(iter_partitions(6, 3)))
        assert count_partitions(6, 3) == 10  # C(5, 2)

    def test_all_partitions_valid(self):
        for sizes in iter_partitions(7, 3):
            assert sum(sizes) == 7
            assert all(s >= 1 for s in sizes)

    def test_single_stage(self):
        assert list(iter_partitions(5, 1)) == [(5,)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(iter_partitions(3, 4))
        with pytest.raises(ValueError):
            count_partitions(3, 0)


class TestOracle:
    @pytest.mark.parametrize("stages,m", [(2, 4), (3, 6), (4, 8)])
    def test_heuristic_within_two_percent_of_optimum(
        self, tiny_profile, stages, m
    ):
        """The master-stage heuristic lands essentially on the optimum for
        the tiny model (16 blocks: small enough to brute-force)."""
        oracle = exhaustive_partition(tiny_profile, stages, m)
        heuristic = plan_partition(tiny_profile, stages, m)
        assert heuristic.iteration_time <= oracle.iteration_time * 1.02

    def test_heuristic_vastly_cheaper(self, tiny_profile):
        oracle = exhaustive_partition(tiny_profile, 4, 8)
        heuristic = plan_partition(tiny_profile, 4, 8)
        # Compare against the enumeration space: the pruned oracle itself
        # now simulates far fewer candidates than it enumerates.
        assert heuristic.evaluations < oracle.space / 5

    def test_oracle_never_above_algorithm1_seed(self, tiny_profile):
        from repro.core.analytic_sim import simulate_partition
        from repro.core.balance_dp import balanced_partition
        oracle = exhaustive_partition(tiny_profile, 3, 6)
        seed = balanced_partition(tiny_profile.block_times(), 3)
        seed_sim = simulate_partition(tiny_profile, seed, 6)
        assert oracle.iteration_time <= seed_sim.iteration_time + 1e-12

    def test_search_space_guard(self, gpt2_profile):
        with pytest.raises(ValueError, match="search space"):
            exhaustive_partition(
                gpt2_profile, 8, 8, max_evaluations=1000
            )


class TestPrunedEquivalence:
    @pytest.mark.parametrize("stages,m", [(2, 4), (3, 6), (4, 8)])
    @pytest.mark.parametrize("comm_mode", ["paper", "edges"])
    def test_pruned_matches_brute_force(
        self, tiny_profile, stages, m, comm_mode
    ):
        """Branch-and-bound returns the brute-force argmin bit-for-bit."""
        brute = exhaustive_partition(
            tiny_profile, stages, m, comm_mode=comm_mode, prune=False
        )
        pruned = exhaustive_partition(
            tiny_profile, stages, m, comm_mode=comm_mode, prune=True
        )
        assert pruned.partition.sizes == brute.partition.sizes
        assert pruned.iteration_time == brute.iteration_time
        assert pruned.space == brute.space
        assert pruned.evaluations <= brute.evaluations

    def test_pruned_actually_prunes(self, tiny_profile):
        pruned = exhaustive_partition(tiny_profile, 4, 8, prune=True)
        assert pruned.evaluations < pruned.space
        assert pruned.pruned > 0

    def test_sim_cache_reports_hits(self, tiny_profile):
        from repro.core.planner import SimCache

        cache = SimCache()
        first = exhaustive_partition(tiny_profile, 3, 6, sim_cache=cache)
        again = exhaustive_partition(tiny_profile, 3, 6, sim_cache=cache)
        assert first.cache_hits == 0 or first.cache_hits < first.space
        assert again.cache_hits > 0
        assert again.partition.sizes == first.partition.sizes
        assert again.iteration_time == first.iteration_time

    @pytest.mark.parametrize("stages,m", [(3, 6), (4, 8)])
    def test_incremental_matches_per_node_pruned_path(
        self, tiny_profile, stages, m
    ):
        """Both pruned evaluators return the identical argmin."""
        per_node = exhaustive_partition(
            tiny_profile, stages, m, incremental=False
        )
        incremental = exhaustive_partition(
            tiny_profile, stages, m, incremental=True
        )
        assert incremental.partition.sizes == per_node.partition.sizes
        assert incremental.iteration_time == per_node.iteration_time
        assert incremental.suffix_sims >= 0
        assert incremental.dominance_pruned >= 0


class TestPruneSlack:
    def test_rejects_invalid_slack(self, tiny_profile):
        for bad in (0.0, 0.5, float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError, match="prune_slack"):
                exhaustive_partition(tiny_profile, 3, 6, prune_slack=bad)

    def test_exact_at_default_slack(self, tiny_profile):
        brute = exhaustive_partition(tiny_profile, 3, 6, prune=False)
        tight = exhaustive_partition(tiny_profile, 3, 6, prune_slack=1.0)
        assert tight.iteration_time == brute.iteration_time
        assert tight.partition.sizes == brute.partition.sizes

    def test_loose_slack_prunes_more_never_worse_than_slack(
        self, tiny_profile
    ):
        """With slack s the returned time is within s of the optimum (the
        incumbent is only ever discarded against bound * s)."""
        brute = exhaustive_partition(tiny_profile, 4, 8, prune=False)
        for slack in (1.05, 1.25):
            loose = exhaustive_partition(tiny_profile, 4, 8, prune_slack=slack)
            assert loose.evaluations <= brute.evaluations
            assert loose.iteration_time <= brute.iteration_time * slack
