"""Megatron uniform partitioner tests."""

import pytest

from repro.baselines.megatron import (
    MegatronInfeasible,
    megatron_stage_options,
    uniform_partition,
)
from repro.models.blocks import BlockKind


class TestUniformPartition:
    def test_even_layer_split(self, gpt2_profile):
        p = uniform_partition(gpt2_profile, 4)
        layers = p.layers_per_stage(gpt2_profile)
        assert layers == (6.0, 6.0, 6.0, 6.0)

    def test_embedding_on_first_stage(self, gpt2_profile):
        p = uniform_partition(gpt2_profile, 4)
        first_kinds = {
            gpt2_profile.blocks[i].block.kind for i in p.stages[0]
        }
        assert BlockKind.EMBEDDING in first_kinds

    def test_head_on_last_stage(self, gpt2_profile):
        p = uniform_partition(gpt2_profile, 4)
        last_kinds = {
            gpt2_profile.blocks[i].block.kind for i in p.stages[-1]
        }
        assert BlockKind.LM_HEAD in last_kinds
        assert BlockKind.FINAL_NORM in last_kinds

    def test_indivisible_depth_rejected(self, gpt2_profile):
        """The paper's caveat: 8 stages need a layer count divisible by 8."""
        with pytest.raises(MegatronInfeasible):
            uniform_partition(gpt2_profile, 5)  # 24 % 5 != 0

    def test_single_stage(self, gpt2_profile):
        p = uniform_partition(gpt2_profile, 1)
        assert p.num_stages == 1
        assert p.num_blocks == gpt2_profile.num_blocks

    def test_invalid_depth(self, gpt2_profile):
        with pytest.raises(ValueError):
            uniform_partition(gpt2_profile, 0)

    def test_last_stage_is_heaviest(self, gpt2_profile):
        """The head makes the uniform last stage the bottleneck —
        the imbalance AutoPipe exploits."""
        from repro.core.partition import stage_times
        p = uniform_partition(gpt2_profile, 4)
        times = stage_times(p, gpt2_profile)
        assert max(times.total) == times.total[-1]


def test_stage_options(gpt2_profile):
    options = megatron_stage_options(gpt2_profile, 12)
    assert options == [1, 2, 3, 4, 6, 8, 12]
