"""DAPPLE planner behaviour tests — the paper's documented observations."""

import pytest

from repro.baselines.common import evaluate_config
from repro.baselines.dapple import plan_dapple
from repro.config import TrainConfig
from repro.hardware.device import DEFAULT_CLUSTER_HW
from repro.models.zoo import GPT2_1_3B, GPT2_345M
from repro.profiling import profile_model


def make_profile(model, mbs, gbs):
    return profile_model(
        model, DEFAULT_CLUSTER_HW,
        TrainConfig(micro_batch_size=mbs, global_batch_size=gbs),
    )


@pytest.fixture(scope="module")
def low_mem_4gpu():
    profile = make_profile(GPT2_345M, 4, 128)
    return profile, plan_dapple(profile, 4, 128)


class TestLowMemoryChoices:
    def test_two_stage_pipeline(self, low_mem_4gpu):
        """Table III: DAPPLE pipelines even when pure DP is feasible."""
        _, cfg = low_mem_4gpu
        assert cfg.num_stages == 2

    def test_light_unreplicated_first_stage(self, low_mem_4gpu):
        _, cfg = low_mem_4gpu
        assert cfg.replicas[0] == 1
        assert cfg.replicas[1] == 3

    def test_heavy_tail_stage(self, low_mem_4gpu):
        """'DAPPLE assigns 17 layers to stage 2 for 24-layer GPT-2 345M'."""
        profile, cfg = low_mem_4gpu
        layers = cfg.partition.layers_per_stage(profile)
        assert layers[1] >= 2 * layers[0]

    def test_semantics_is_subbatch(self, low_mem_4gpu):
        _, cfg = low_mem_4gpu
        assert cfg.semantics == "subbatch"

    def test_executed_cost_exceeds_pure_dp(self, low_mem_4gpu):
        """The sub-batch padding makes the plan ~1.5-1.8x worse than DP."""
        profile, cfg = low_mem_4gpu
        ev = evaluate_config(profile, cfg, 128)
        pure_dp = 8 * profile.total_time()  # 32 micro-batches over 4 GPUs
        assert 1.3 * pure_dp < ev.iteration_seconds < 2.2 * pure_dp


class TestSixteenGPURuntimeError:
    def test_fifteen_replicas_on_stage_two(self):
        """Table III's '-': 15 replicas exceed micro-batch size 4."""
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = plan_dapple(profile, 16, 128)
        assert cfg.num_stages == 2
        assert max(cfg.replicas) == 15
        ev = evaluate_config(profile, cfg, 128)
        assert ev.runtime_error is not None


class TestHighMemoryChoices:
    def test_gpt2_13b_plan_ooms_at_runtime(self):
        """Table IV: the optimistic memory check lets an OOM plan through."""
        profile = make_profile(GPT2_1_3B, 16, 512)
        cfg = plan_dapple(profile, 8, 512)
        assert cfg.num_stages == 2
        ev = evaluate_config(profile, cfg, 512)
        assert ev.oom

    def test_gpt2_345m_mbs32_runs(self):
        profile = make_profile(GPT2_345M, 32, 512)
        cfg = plan_dapple(profile, 4, 512)
        ev = evaluate_config(profile, cfg, 512)
        assert not ev.failed
        assert cfg.num_stages == 2


class TestSearchMetadata:
    def test_search_time_positive(self, low_mem_4gpu):
        _, cfg = low_mem_4gpu
        assert cfg.search_seconds > 0

    def test_indivisible_batch_rejected(self):
        profile = make_profile(GPT2_345M, 4, 128)
        with pytest.raises(ValueError):
            plan_dapple(profile, 4, 130)
