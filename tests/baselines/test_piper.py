"""Piper planner behaviour tests — the paper's documented observations."""

import pytest

from repro.baselines.common import evaluate_config
from repro.baselines.piper import plan_piper
from repro.config import TrainConfig
from repro.hardware.device import DEFAULT_CLUSTER_HW
from repro.models.zoo import GPT2_1_3B, GPT2_345M
from repro.profiling import profile_model


def make_profile(model, mbs, gbs):
    return profile_model(
        model, DEFAULT_CLUSTER_HW,
        TrainConfig(micro_batch_size=mbs, global_batch_size=gbs),
    )


class TestLowMemory:
    def test_complete_data_parallelism(self):
        """Table III: with low memory demand Piper uses pure DP."""
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = plan_piper(profile, 16, 128)
        assert cfg.num_stages == 1
        assert cfg.replicas == (16,)

    def test_four_gpus_also_pure_dp(self):
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = plan_piper(profile, 4, 128)
        assert cfg.num_stages == 1


class TestHighMemory:
    def test_pipelines_when_memory_forces_it(self):
        profile = make_profile(GPT2_345M, 32, 512)
        cfg = plan_piper(profile, 4, 512)
        assert cfg.num_stages > 1

    def test_more_stages_than_autopipe(self):
        """'Piper adopts a pipeline with more than 2 stages'."""
        from repro.core.strategy import autopipe_config
        profile = make_profile(GPT2_345M, 32, 512)
        piper = plan_piper(profile, 8, 512)
        auto = autopipe_config(profile, 8, 512)
        assert piper.num_stages > auto.num_stages

    def test_gpt2_13b_four_stages_on_4gpus(self):
        profile = make_profile(GPT2_1_3B, 16, 512)
        cfg = plan_piper(profile, 4, 512)
        assert cfg.num_stages == 4
        assert cfg.replicas == (1, 1, 1, 1)

    def test_plan_respects_memory(self):
        """Piper's DP has the memory constraint built in."""
        from repro.baselines.common import config_memory
        profile = make_profile(GPT2_1_3B, 16, 512)
        cfg = plan_piper(profile, 8, 512)
        ev = evaluate_config(profile, cfg, 512)
        assert not ev.oom

    def test_executed_slower_than_autopipe(self):
        """Table IV: AutoPipe outperforms Piper by ~1.05-1.2x."""
        from repro.core.strategy import autopipe_config
        profile = make_profile(GPT2_1_3B, 16, 512)
        piper_ev = evaluate_config(profile, plan_piper(profile, 8, 512), 512)
        auto_ev = evaluate_config(profile, autopipe_config(profile, 8, 512), 512)
        ratio = piper_ev.iteration_seconds / auto_ev.iteration_seconds
        assert 1.0 < ratio < 1.35


class TestSearchMetadata:
    def test_search_time_positive(self):
        profile = make_profile(GPT2_345M, 4, 128)
        cfg = plan_piper(profile, 4, 128)
        assert cfg.search_seconds > 0

    def test_indivisible_batch_rejected(self):
        profile = make_profile(GPT2_345M, 4, 128)
        with pytest.raises(ValueError):
            plan_piper(profile, 4, 130)
