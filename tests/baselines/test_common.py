"""PlannedConfig / evaluate_config semantics tests."""

import math

import pytest

from repro.baselines.common import (
    PlannedConfig,
    config_memory,
    effective_stage_times,
    evaluate_config,
)
from repro.core.balance_dp import balanced_partition


def make_config(profile, stages, replicas, semantics="stream", planner="x"):
    partition = balanced_partition(profile.block_times(), stages)
    return PlannedConfig(
        planner=planner,
        partition=partition,
        replicas=tuple(replicas),
        num_gpus=sum(replicas),
        search_seconds=0.0,
        semantics=semantics,
    )


class TestPlannedConfig:
    def test_replica_sum_checked(self, tiny_profile):
        partition = balanced_partition(tiny_profile.block_times(), 2)
        with pytest.raises(ValueError):
            PlannedConfig(
                planner="x", partition=partition, replicas=(2, 3),
                num_gpus=4, search_seconds=0.0,
            )

    def test_replica_count_must_match_stages(self, tiny_profile):
        partition = balanced_partition(tiny_profile.block_times(), 2)
        with pytest.raises(ValueError):
            PlannedConfig(
                planner="x", partition=partition, replicas=(4,),
                num_gpus=4, search_seconds=0.0,
            )

    def test_uniform_dp(self, tiny_profile):
        assert make_config(tiny_profile, 2, (2, 2)).uniform_dp == 2
        assert make_config(tiny_profile, 2, (1, 3)).uniform_dp is None

    def test_semantics_validated(self, tiny_profile):
        with pytest.raises(ValueError):
            make_config(tiny_profile, 2, (1, 1), semantics="weird")


class TestEffectiveStageTimes:
    def test_stream_divides_exactly(self, tiny_profile):
        p = balanced_partition(tiny_profile.block_times(), 2)
        base = effective_stage_times(tiny_profile, p, (1, 1), 4, "stream")
        halved = effective_stage_times(tiny_profile, p, (2, 2), 4, "stream")
        for b, h in zip(base.fwd, halved.fwd):
            assert h == pytest.approx(b / 2)

    def test_subbatch_pays_ceil_padding(self, tiny_profile):
        """3 replicas of a 4-sample micro-batch run 2-sample sub-batches."""
        p = balanced_partition(tiny_profile.block_times(), 2)
        r3 = effective_stage_times(tiny_profile, p, (1, 3), 4, "subbatch")
        r2 = effective_stage_times(tiny_profile, p, (1, 2), 3, "subbatch")
        base = effective_stage_times(tiny_profile, p, (1, 1), 4, "stream")
        # ceil(4/3)=2 -> at least half the full time, plus GEMM penalty.
        assert r3.fwd[1] > base.fwd[1] / 3
        assert r3.fwd[1] > base.fwd[1] / 2

    def test_subbatch_replicas_capped_at_mbs(self, tiny_profile):
        p = balanced_partition(tiny_profile.block_times(), 2)
        t = effective_stage_times(tiny_profile, p, (1, 9), 4, "subbatch")
        assert t.fwd[1] > 0


class TestEvaluateConfig:
    def test_pure_dp_equivalent_to_serial_slice(self, tiny_profile):
        cfg = make_config(tiny_profile, 1, (4,))
        ev = evaluate_config(tiny_profile, cfg, 64)
        # 16 micro-batches / dp4 -> 4 per replica, serial model.
        expected = 4 * tiny_profile.total_time()
        assert ev.pipeline_seconds == pytest.approx(expected, rel=0.02)

    def test_subbatch_replica_overflow_is_runtime_error(self, tiny_profile):
        cfg = make_config(tiny_profile, 2, (1, 7), semantics="subbatch")
        ev = evaluate_config(tiny_profile, cfg, 64)
        assert ev.runtime_error is not None
        assert ev.failed

    def test_stream_divisibility_error(self, tiny_profile):
        cfg = make_config(tiny_profile, 2, (3, 3))
        # 64/4 = 16 micro-batches, not divisible by 3.
        ev = evaluate_config(tiny_profile, cfg, 64)
        assert ev.runtime_error is not None

    def test_allreduce_included(self, tiny_profile):
        single = make_config(tiny_profile, 2, (1, 1))
        wide = make_config(tiny_profile, 2, (4, 4))
        ev1 = evaluate_config(tiny_profile, single, 64)
        ev4 = evaluate_config(tiny_profile, wide, 64)
        assert ev1.allreduce_seconds == 0.0
        assert ev4.allreduce_seconds > 0.0

    def test_stage_seconds_are_replica_independent(self, tiny_profile):
        narrow = make_config(tiny_profile, 2, (1, 1))
        wide = make_config(tiny_profile, 2, (2, 2))
        e1 = evaluate_config(tiny_profile, narrow, 64)
        e2 = evaluate_config(tiny_profile, wide, 64)
        assert e1.stage_seconds == pytest.approx(e2.stage_seconds)

    def test_indivisible_global_batch(self, tiny_profile):
        cfg = make_config(tiny_profile, 2, (1, 1))
        with pytest.raises(ValueError):
            evaluate_config(tiny_profile, cfg, 65)


class TestConfigMemory:
    def test_stream_full_stash(self, tiny_profile):
        p = balanced_partition(tiny_profile.block_times(), 2)
        stream = config_memory(tiny_profile, p, (1, 1), 8, 4, "stream")
        sub = config_memory(tiny_profile, p, (2, 2), 8, 4, "subbatch")
        # Sub-batch replicas stash a fraction of each micro-batch.
        assert sub[0] < stream[0]

    def test_more_stages_less_static(self, tiny_profile):
        p2 = balanced_partition(tiny_profile.block_times(), 2)
        p4 = balanced_partition(tiny_profile.block_times(), 4)
        m2 = config_memory(tiny_profile, p2, (1, 1), 8, 4, "stream")
        m4 = config_memory(tiny_profile, p4, (1, 1, 1, 1), 8, 4, "stream")
        assert max(m4) < max(m2)
