"""Property suite: vectorized Piper/DAPPLE DPs == scalar reference plans.

Hypothesis jitters block profiles (times, params, stash, workspace),
communication cost, device memory and cluster shape, then asserts the
``impl="vector"`` planners return plans *identical* to the scalar loops:
same partition, same replica vector, bitwise-equal predicted time, same
notes — or the very same infeasibility error.  Squeezed memory factors
exercise the feasibility masks; the tie-prone jitter range exercises the
first-win argmin tie-breaks.
"""

import dataclasses
import random

from hypothesis import given, settings, strategies as st

from repro.baselines.dapple import plan_dapple
from repro.baselines.piper import plan_piper, tp_widths
from repro.experiments.common import make_profile
from repro.models.zoo import BERT_LARGE, GPT2_345M


def _jittered(model, mbs, m, seed, mem_factor, nodes, per_node):
    base = make_profile(model, mbs, m)
    rng = random.Random(seed)
    blocks = tuple(
        dataclasses.replace(
            bp,
            fwd_time=bp.fwd_time * (0.5 + rng.random()),
            bwd_time=bp.bwd_time * (0.5 + rng.random()),
            params=bp.params * (0.5 + rng.random()),
            stash_bytes=bp.stash_bytes * (0.5 + rng.random()),
            workspace_bytes=bp.workspace_bytes * (0.5 + rng.random()),
        )
        for bp in base.blocks
    )
    hardware = dataclasses.replace(
        base.hardware,
        num_nodes=nodes,
        gpus_per_node=per_node,
        gpu_memory=base.hardware.gpu_memory * mem_factor,
    )
    return dataclasses.replace(
        base,
        blocks=blocks,
        hardware=hardware,
        comm_time=base.comm_time * (0.5 + rng.random()),
    )


def _outcome(planner, profile, num_gpus, gbs):
    try:
        cfg = planner(profile, num_gpus, gbs)
    except RuntimeError as exc:
        return ("infeasible", str(exc))
    return (cfg.partition, cfg.replicas, cfg.predicted, cfg.notes)


plan_case = dict(
    model=st.sampled_from([GPT2_345M, BERT_LARGE]),
    mbs=st.sampled_from([4, 8, 32]),
    m=st.sampled_from([8, 16, 32]),
    seed=st.integers(0, 2**32 - 1),
    mem_factor=st.sampled_from([0.1, 0.3, 1.0]),
    nodes=st.sampled_from([1, 2, 4]),
    per_node=st.sampled_from([2, 4, 8]),
)


class TestPiperEquivalence:
    @given(data=st.data(), **plan_case)
    @settings(max_examples=30, deadline=None)
    def test_vector_plan_equals_scalar(
        self, data, model, mbs, m, seed, mem_factor, nodes, per_node
    ):
        profile = _jittered(model, mbs, m, seed, mem_factor, nodes, per_node)
        gbs = mbs * m
        num_gpus = data.draw(st.integers(1, nodes * per_node))
        scalar = _outcome(
            lambda p, g, b: plan_piper(p, g, b, impl="scalar"),
            profile, num_gpus, gbs,
        )
        vector = _outcome(
            lambda p, g, b: plan_piper(p, g, b, impl="vector"),
            profile, num_gpus, gbs,
        )
        assert scalar == vector

    def test_tp_widths_are_node_divisors(self):
        assert tp_widths(8) == (1, 2, 4, 8)
        assert tp_widths(6) == (1, 2, 3, 6)
        assert tp_widths(1) == (1,)


class TestDappleEquivalence:
    @given(data=st.data(), **plan_case)
    @settings(max_examples=30, deadline=None)
    def test_vector_plan_equals_scalar(
        self, data, model, mbs, m, seed, mem_factor, nodes, per_node
    ):
        profile = _jittered(model, mbs, m, seed, mem_factor, nodes, per_node)
        gbs = mbs * m
        num_gpus = data.draw(st.integers(2, nodes * per_node))
        scalar = _outcome(
            lambda p, g, b: plan_dapple(p, g, b, impl="scalar"),
            profile, num_gpus, gbs,
        )
        vector = _outcome(
            lambda p, g, b: plan_dapple(p, g, b, impl="vector"),
            profile, num_gpus, gbs,
        )
        assert scalar == vector
