"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_flow():
    """The flow shown in the package docstring must work verbatim-ish."""
    from repro import (
        DEFAULT_CLUSTER_HW,
        GPT2_345M,
        TrainConfig,
        autopipe_plan,
    )

    train = TrainConfig(micro_batch_size=4, global_batch_size=32)
    solution = autopipe_plan(
        GPT2_345M, DEFAULT_CLUSTER_HW, train, num_stages=4, num_micro_batches=8
    )
    layers = solution.partition.layers_per_stage(solution.profile)
    assert len(layers) == 4
    assert sum(layers) == 24
